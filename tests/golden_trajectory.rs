//! Golden-trajectory regression: the per-stage `CostReport` /
//! `CompositionReport` of a fixed-seed Theorem 1.1 and Theorem 1.2 run is
//! serialized field-by-field and compared against the checked-in files under
//! `tests/golden/`, so future refactors cannot silently change the round
//! accounting of either route.
//!
//! On mismatch the actual serialization is written to
//! `target/golden-actual/<route>.txt` (uploaded as a CI artifact) and the
//! first differing fields are reported. After an *intentional* accounting
//! change, regenerate with:
//!
//! ```console
//! $ UPDATE_GOLDEN=1 cargo test --test golden_trajectory
//! ```

use congest_mds::congest::PhaseMode;
use congest_mds::graphs::generators;
use congest_mds::mds::pipeline::{theorem_1_1, theorem_1_2, MdsConfig, MdsResult};
use std::fmt::Write as _;
use std::path::PathBuf;

const GRAPH_N: usize = 40;
const GRAPH_P: f64 = 0.12;
const GRAPH_SEED: u64 = 7;

/// Serializes every accounting field of a pipeline result into a stable,
/// line-per-field text form.
fn serialize(route: &str, result: &MdsResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden cost trajectory — regenerate with UPDATE_GOLDEN=1 cargo test --test golden_trajectory"
    );
    let _ = writeln!(out, "route={route}");
    let _ = writeln!(out, "graph=gnp n={GRAPH_N} p={GRAPH_P} seed={GRAPH_SEED}");
    let _ = writeln!(out, "set_size={}", result.size());
    for (i, p) in result.phases.iter().enumerate() {
        let mode = match p.mode {
            PhaseMode::Measured => "measured",
            PhaseMode::Charged => "charged",
        };
        let _ = writeln!(out, "phase[{i}].name={}", p.name);
        let _ = writeln!(out, "phase[{i}].mode={mode}");
        let _ = writeln!(out, "phase[{i}].rounds={}", p.rounds);
        let _ = writeln!(out, "phase[{i}].messages={}", p.messages);
    }
    for (i, p) in result.ledger.phases().iter().enumerate() {
        let _ = writeln!(out, "ledger[{i}].name={}", p.name);
        let _ = writeln!(out, "ledger[{i}].simulated_rounds={}", p.simulated_rounds);
        let _ = writeln!(
            out,
            "ledger[{i}].formula_rounds={}",
            p.formula_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_owned())
        );
        let _ = writeln!(out, "ledger[{i}].messages={}", p.messages);
    }
    let _ = writeln!(
        out,
        "totals.simulated_rounds={}",
        result.ledger.total_simulated_rounds()
    );
    let _ = writeln!(
        out,
        "totals.formula_rounds={}",
        result.ledger.total_formula_rounds()
    );
    let _ = writeln!(out, "totals.messages={}", result.ledger.total_messages());
    let _ = writeln!(
        out,
        "totals.measured_engine_rounds={}",
        result.measured_engine_rounds()
    );
    let _ = writeln!(
        out,
        "totals.measured_coloring_rounds={}",
        result.measured_coloring_rounds()
    );
    let _ = writeln!(
        out,
        "totals.measured_netdecomp_rounds={}",
        result.measured_netdecomp_rounds()
    );
    for (i, s) in result.stages.iter().enumerate() {
        let _ = writeln!(out, "stage[{i}].name={}", s.name);
        let _ = writeln!(out, "stage[{i}].size={}", s.size);
        let _ = writeln!(out, "stage[{i}].fractionality={}", s.fractionality);
    }
    out
}

/// The `key=value` fields of a serialization, comments and blanks dropped.
fn fields(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| match l.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (l.to_owned(), String::new()),
        })
        .collect()
}

fn compare_against_golden(route: &str, result: &MdsResult) {
    let actual = serialize(route, result);
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{route}.txt"));

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &actual).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        stash_actual(route, &actual);
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_trajectory",
            golden_path.display()
        )
    });

    let want = fields(&golden);
    let got = fields(&actual);
    let mut diffs: Vec<String> = Vec::new();
    for i in 0..want.len().max(got.len()) {
        match (want.get(i), got.get(i)) {
            (Some(w), Some(g)) if w == g => {}
            (w, g) => diffs.push(format!(
                "  field #{i}: golden {:?} vs actual {:?}",
                w.map(|(k, v)| format!("{k}={v}")),
                g.map(|(k, v)| format!("{k}={v}"))
            )),
        }
    }
    if !diffs.is_empty() {
        stash_actual(route, &actual);
        let shown = diffs.len().min(12);
        panic!(
            "{route}: round accounting diverged from tests/golden/{route}.txt in {} field(s):\n{}\n\
             (full actual serialization stashed in target/golden-actual/{route}.txt; \
             if the change is intentional, regenerate with UPDATE_GOLDEN=1)",
            diffs.len(),
            diffs[..shown].join("\n")
        );
    }
}

/// Writes the actual serialization where CI can pick it up as an artifact.
fn stash_actual(route: &str, actual: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-actual");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{route}.txt")), actual);
    }
}

#[test]
fn theorem_1_1_trajectory_matches_golden() {
    let g = generators::gnp(GRAPH_N, GRAPH_P, GRAPH_SEED);
    let result = theorem_1_1(&g, &MdsConfig::default());
    compare_against_golden("theorem_1_1", &result);
}

#[test]
fn theorem_1_2_trajectory_matches_golden() {
    let g = generators::gnp(GRAPH_N, GRAPH_P, GRAPH_SEED);
    let result = theorem_1_2(&g, &MdsConfig::default());
    compare_against_golden("theorem_1_2", &result);
}
