//! Negative-path coverage for the program-composition layer and the measured
//! distance-two coloring: phase/graph misalignment, empty graphs, and the
//! `Δ_L = 0` degenerate bipartite inputs — paths that are validated in the
//! library but were previously untested end to end.

use congest_mds::congest::ledger::formulas;
use congest_mds::congest::{
    ComposedProgram, ExecutionError, Executor, ExecutorConfig, Graph, Inbox, NodeContext,
    NodeProgram, Outbox, ParallelExecutor, PhaseSpec, PooledExecutor, RoundAction, SyncExecutor,
};
use congest_mds::decomposition::coloring::{
    bipartite_distance_two_coloring, distance_two_coloring_programs,
    distributed_bipartite_coloring, verify_bipartite_coloring,
};
use congest_mds::graphs::bipartite::{BipartiteGraph, BipartiteRepresentation};
use congest_mds::graphs::generators;
use congest_mds::mds::pipeline::{self, DerandRoute, MdsConfig};

/// A trivial one-round program for exercising the composer.
struct Noop;

impl NodeProgram for Noop {
    type Message = ();
    type Output = usize;

    fn init(&mut self, _: &NodeContext<'_>, _: &mut Outbox<'_, ()>) {}

    fn round(
        &mut self,
        ctx: &NodeContext<'_>,
        _: &Inbox<'_, ()>,
        _: &mut Outbox<'_, ()>,
    ) -> RoundAction<usize> {
        RoundAction::Halt(ctx.id.0)
    }
}

// ---- congest_sim::compose ----

#[test]
fn composer_rejects_phase_graph_misalignment_and_records_nothing() {
    let g = generators::path(4);
    let mut composed = ComposedProgram::new(&g, &SyncExecutor, ExecutorConfig::default());
    // A phase sized for a different graph: 2 programs for 4 nodes.
    let err = composed
        .measured(PhaseSpec::named("misaligned"), vec![Noop, Noop])
        .unwrap_err();
    assert!(matches!(
        err,
        ExecutionError::ProgramCountMismatch {
            programs: 2,
            nodes: 4
        }
    ));
    // The failed phase leaves no trace in the ledger or the phase list; the
    // composer remains usable for a correctly sized phase.
    assert_eq!(composed.ledger().phases().len(), 0);
    let ok = composed
        .measured(
            PhaseSpec::named("aligned"),
            (0..4).map(|_| Noop).collect::<Vec<_>>(),
        )
        .unwrap();
    assert_eq!(ok.outputs, vec![0, 1, 2, 3]);
    let report = composed.finish();
    assert_eq!(report.phases.len(), 1);
    assert_eq!(report.measured_phase_count(), 1);
}

#[test]
fn composer_handles_the_empty_graph() {
    let g = Graph::empty(0);
    let mut composed = ComposedProgram::new(&g, &SyncExecutor, ExecutorConfig::default());
    // A measured phase over zero nodes is legal and spends zero rounds.
    let report = composed
        .measured(PhaseSpec::named("empty measured"), Vec::<Noop>::new())
        .unwrap();
    assert_eq!(report.rounds, 0);
    assert!(report.outputs.is_empty());
    // Charged bookkeeping still accumulates normally.
    composed.charged(PhaseSpec::named("empty charged").with_formula(3), 1, 0);
    let finished = composed.finish();
    assert_eq!(finished.phases.len(), 2);
    assert_eq!(finished.measured_rounds(), 0);
    // Zero measured rounds plus the charged formula.
    assert_eq!(finished.ledger.total_formula_rounds(), 3);
}

#[test]
fn pipeline_survives_empty_and_edgeless_graphs_on_the_coloring_route() {
    let config = MdsConfig {
        route: DerandRoute::Coloring,
        ..MdsConfig::default()
    };
    let empty = Graph::empty(0);
    let run = pipeline::run(&empty, &config);
    let oracle = pipeline::central_oracle(&empty, &config);
    assert!(run.dominating_set.is_empty());
    assert_eq!(run.dominating_set, oracle.dominating_set);

    // Isolated nodes: every node must join; the routes agree bit for bit.
    let isolated = Graph::empty(5);
    let run = pipeline::run(&isolated, &config);
    let oracle = pipeline::central_oracle(&isolated, &config);
    assert_eq!(run.dominating_set.len(), 5);
    assert_eq!(run.dominating_set, oracle.dominating_set);
    assert_eq!(run.assignment, oracle.assignment);
}

// ---- the measured distance-two coloring ----

#[test]
fn coloring_program_rejects_misaligned_instances() {
    let g = generators::path(4);
    let rep = BipartiteRepresentation::from_graph(&g);
    let owners: Vec<usize> = (0..4).collect();

    // Right side not aligned with the network.
    let foreign = BipartiteGraph::new(2, 7);
    let err = distance_two_coloring_programs(&g, &foreign, &[0, 1], &[]).unwrap_err();
    assert!(err.contains("graph-aligned"), "{err}");

    // Owner list of the wrong length.
    let err = distance_two_coloring_programs(&g, rep.graph(), &owners[..3], &[]).unwrap_err();
    assert!(err.contains("left owners"), "{err}");

    // An owner that cannot reach its constraint's members in one hop.
    let far = vec![3, 1, 2, 3];
    let err = distance_two_coloring_programs(&g, rep.graph(), &far, &[0]).unwrap_err();
    assert!(err.contains("inclusive neighborhood"), "{err}");

    // Duplicate / out-of-range targets.
    let err = distance_two_coloring_programs(&g, rep.graph(), &owners, &[2, 2]).unwrap_err();
    assert!(err.contains("twice"), "{err}");
    let err = distance_two_coloring_programs(&g, rep.graph(), &owners, &[11]).unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}

#[test]
fn degenerate_bipartite_input_without_left_nodes_is_colored_in_one_step() {
    // Δ_L = 0: no constraint node exists, so nothing conflicts. The oracle
    // and the engine agree on the all-zero coloring, and the measured run
    // spends one decide plus one observing round — within the (floored)
    // Lemma 3.12 charge.
    let g = generators::cycle(6);
    let b = BipartiteGraph::new(0, 6);
    let targets: Vec<usize> = (0..6).collect();
    assert_eq!(b.max_left_degree(), 0);

    let oracle = bipartite_distance_two_coloring(&b, &targets, g.n());
    assert_eq!(oracle.num_colors, 1);
    verify_bipartite_coloring(&b, &oracle, &targets).unwrap();

    let run = distributed_bipartite_coloring(&g, &b, &[], &targets).unwrap();
    assert_eq!(run.coloring.colors, oracle.colors);
    assert_eq!(run.steps, 1);
    assert_eq!(run.report.rounds, formulas::measured_coloring_rounds(1));
    assert!(run.report.rounds <= formulas::bipartite_coloring_rounds(0, 0, g.n()));
}

// ---- the broadcast fast path's degenerate case ----

/// Broadcasts every round until round 3, then halts with the number of
/// messages ever received.
struct CountingBroadcaster {
    seen: usize,
}

impl NodeProgram for CountingBroadcaster {
    type Message = u32;
    type Output = usize;

    fn init(&mut self, _: &NodeContext<'_>, outbox: &mut Outbox<'_, u32>) {
        outbox.broadcast(7);
    }

    fn round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<'_, u32>,
        outbox: &mut Outbox<'_, u32>,
    ) -> RoundAction<usize> {
        self.seen += inbox.len();
        if ctx.round >= 3 {
            RoundAction::Halt(self.seen)
        } else {
            outbox.broadcast(7);
            RoundAction::Continue
        }
    }
}

fn counting_broadcasters(n: usize) -> Vec<CountingBroadcaster> {
    (0..n).map(|_| CountingBroadcaster { seen: 0 }).collect()
}

#[test]
fn broadcast_on_isolated_nodes_is_a_free_noop_on_every_backend() {
    use congest_mds::transport::{ChannelExecutor, Role, SocketListener, SocketSession};
    use std::time::Duration;

    // Nodes 3 and 4 are isolated: their broadcasts must be no-ops — zero
    // charged messages, zero stored payloads, zero bits. The triangle 0-1-2
    // keeps the run from being trivially empty: each of its nodes broadcasts
    // in rounds 0..3 (2 messages charged, 1 payload stored per broadcast)
    // and hears both neighbors in rounds 1..=3.
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let config = ExecutorConfig::default();
    let seq = SyncExecutor
        .run(&g, counting_broadcasters(5), &config)
        .unwrap();
    assert_eq!(seq.outputs, vec![6, 6, 6, 0, 0]);
    assert_eq!(seq.messages, 18);
    assert_eq!(seq.payloads, 9);

    // All five nodes isolated: every broadcast in the run is the degenerate
    // case, and the whole report is zeros.
    let empty = Graph::empty(5);
    let quiet = SyncExecutor
        .run(&empty, counting_broadcasters(5), &config)
        .unwrap();
    assert_eq!(quiet.outputs, vec![0; 5]);
    assert_eq!(quiet.messages, 0);
    assert_eq!(quiet.payloads, 0);
    assert_eq!(quiet.total_bits, 0);

    // Every in-process backend agrees bit for bit on both graphs.
    macro_rules! check_backend {
        ($label:literal, $executor:expr) => {
            let report = $executor
                .run(&g, counting_broadcasters(5), &config)
                .unwrap();
            assert_eq!(
                seq, report,
                "{} diverged on the isolated-node graph",
                $label
            );
            let report = $executor
                .run(&empty, counting_broadcasters(5), &config)
                .unwrap();
            assert_eq!(quiet, report, "{} diverged on the edgeless graph", $label);
        };
    }
    check_backend!("parallel", ParallelExecutor::new(2));
    check_backend!("pooled", PooledExecutor::new(2));
    check_backend!("channels", ChannelExecutor::new(2, 2));

    // And so does the socket backend over loopback, on the mixed graph.
    let listener = SocketListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let follower = s.spawn(|| {
            let mut session = SocketSession::connect(addr, Duration::from_secs(30)).unwrap();
            session.set_timeout(Duration::from_secs(120));
            session.run_program(Role::Follower, &g, counting_broadcasters(5), &config)
        });
        let mut session = listener.accept().unwrap();
        session.set_timeout(Duration::from_secs(120));
        let leader = session
            .run_program(Role::Leader, &g, counting_broadcasters(5), &config)
            .unwrap();
        assert_eq!(seq, leader, "socket leader diverged");
        let follower = follower.join().expect("follower thread").unwrap();
        assert_eq!(seq, follower, "socket follower diverged");
    });
}

// ---- the measured network decomposition ----

#[test]
fn netdecomp_program_survives_empty_edgeless_and_single_node_graphs() {
    use congest_mds::decomposition::netdecomp::{distributed_decomposition, DecompositionConfig};

    let config = DecompositionConfig::default();

    // The empty graph: no phase is scheduled, so the run spends zero rounds
    // and produces zero clusters. The pipeline agrees with its oracle.
    let empty = Graph::empty(0);
    let run = distributed_decomposition(&empty, 2, &config).unwrap();
    assert_eq!(run.report.rounds, 0);
    assert_eq!(run.schedule.num_phases, 0);
    assert!(run.decomposition.clusters.is_empty());
    let nd_config = MdsConfig {
        route: DerandRoute::NetworkDecomposition { k: 2 },
        ..MdsConfig::default()
    };
    let pipeline_run = pipeline::run(&empty, &nd_config);
    assert!(pipeline_run.dominating_set.is_empty());
    assert_eq!(
        pipeline_run.dominating_set,
        pipeline::central_oracle(&empty, &nd_config).dominating_set
    );

    // Edgeless: every node is its own carve center — one phase, zero wave
    // depth, one observing round, zero messages; the floored Theorem 3.2
    // charge still covers it.
    let edgeless = Graph::empty(5);
    let run = distributed_decomposition(&edgeless, 2, &config).unwrap();
    assert_eq!(run.schedule.num_phases, 1);
    assert_eq!(run.report.rounds, 1);
    assert_eq!(run.report.messages, 0);
    assert_eq!(run.decomposition.clusters.len(), 5);
    assert!(run.report.rounds <= formulas::netdecomp_charge_rounds(5, 2));
    let pipeline_run = pipeline::run(&edgeless, &nd_config);
    assert_eq!(pipeline_run.dominating_set.len(), 5);
    assert_eq!(
        pipeline_run.dominating_set,
        pipeline::central_oracle(&edgeless, &nd_config).dominating_set
    );

    // A single node: the fully degenerate instance of the same shape.
    let single = Graph::empty(1);
    let run = distributed_decomposition(&single, 2, &config).unwrap();
    assert_eq!(run.report.rounds, 1);
    assert_eq!(run.decomposition.clusters.len(), 1);
    assert!(run.report.rounds <= formulas::netdecomp_charge_rounds(1, 2));
}

#[test]
fn misaligned_decomposition_plan_is_rejected_and_records_nothing() {
    use congest_mds::decomposition::netdecomp::{
        carving_schedule, netdecomp_programs, netdecomp_programs_from_schedule, DecompositionConfig,
    };

    let g = generators::path(6);
    let config = DecompositionConfig::default();

    // A schedule carved for a different network is rejected up front.
    let schedule = carving_schedule(&generators::path(4), 2, &config);
    let err = netdecomp_programs_from_schedule(&g, &schedule).unwrap_err();
    assert!(err.contains("graph-aligned"), "{err}");

    // A corrupted phase index is rejected.
    let mut wild = carving_schedule(&g, 2, &config);
    wild.phase[2] = wild.num_phases + 3;
    let err = netdecomp_programs_from_schedule(&g, &wild).unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    // Feeding a phase built for the wrong graph through the composer fails
    // with the engine's alignment error and leaves no ledger trace — the
    // composer stays usable for the correctly sized decomposition phase.
    let (programs, _) = netdecomp_programs(&generators::path(4), 2, &config);
    let mut composed = ComposedProgram::new(&g, &SyncExecutor, ExecutorConfig::default());
    let err = composed
        .measured(PhaseSpec::named("misaligned netdecomp"), programs)
        .unwrap_err();
    assert!(matches!(
        err,
        ExecutionError::ProgramCountMismatch {
            programs: 4,
            nodes: 6
        }
    ));
    assert_eq!(composed.ledger().phases().len(), 0);
    let (programs, schedule) = netdecomp_programs(&g, 2, &config);
    let ok = composed
        .measured(PhaseSpec::named("aligned netdecomp"), programs)
        .unwrap();
    assert_eq!(ok.rounds, schedule.wave_rounds());
    let report = composed.finish();
    assert_eq!(report.phases.len(), 1);
}

#[test]
fn degenerate_one_center_instance_spends_the_floored_charge() {
    use congest_mds::decomposition::netdecomp::{
        distributed_decomposition, strong_diameter_decomposition, DecompositionConfig,
    };

    // A complete graph is carved in a single phase by a single center (node
    // 0): the join wave takes one round, every other node joins at depth 1,
    // and all nodes halt in the observing round after it — exactly
    // `measured_netdecomp_rounds(1, 1) = 2` rounds, which is the floor of
    // the Theorem 3.2 charge.
    let g = generators::complete(12);
    let config = DecompositionConfig::default();
    let oracle = strong_diameter_decomposition(&g, 2, &config);
    assert_eq!(oracle.clusters.len(), 1);
    assert_eq!(oracle.num_colors(), 1);
    let run = distributed_decomposition(&g, 2, &config).unwrap();
    assert_eq!(run.decomposition.clusters, oracle.clusters);
    assert_eq!(run.schedule.num_phases, 1);
    assert_eq!(run.schedule.total_wave_depth(), 1);
    assert_eq!(run.report.rounds, formulas::measured_netdecomp_rounds(1, 1));
    assert_eq!(run.report.rounds, 2);
    assert!(run.report.rounds <= formulas::netdecomp_charge_rounds(g.n(), 2));
}

#[test]
fn coloring_program_on_the_empty_graph_is_a_noop() {
    let g = Graph::empty(0);
    let b = BipartiteGraph::new(0, 0);
    let run = distributed_bipartite_coloring(&g, &b, &[], &[]).unwrap();
    assert_eq!(run.report.rounds, 0);
    assert_eq!(run.coloring.num_colors, 0);
    assert!(run.coloring.colors.is_empty());
}
