//! Minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The workspace must build offline, so this crate vendors just enough of the
//! criterion 0.5 API for the benches under `crates/bench/benches/` to compile
//! and run: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::measurement_time`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up followed by `sample_size`
//! timed samples, reporting min/mean — and prints one line per benchmark.
//! There is no statistical analysis, HTML report or comparison to baselines;
//! the point is that `cargo bench` works and gives honest wall-clock numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        run_benchmark(id, 10, Duration::from_secs(1), |b| f(b));
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| f(b));
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
    }

    /// Finish the group (upstream consumes `self`; this shim does too).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark distinguished only by a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: p.to_string(),
        }
    }

    /// A benchmark named `name`, instantiated with parameter `p`.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            function: Some(name.into()),
            parameter: p.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping one sample per invocation batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?}, min {min:?} ({} samples)",
        bencher.samples.len()
    );
}

/// Mirror of `criterion::criterion_group!` (plain-list form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // warm-up + at least one timed sample per bench_function call
        assert!(runs >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
