//! Slice helpers (`rand::seq` subset).

use crate::Rng;

/// The subset of `rand::seq::SliceRandom` used by this workspace.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Shuffle the sequence in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Pick a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(11);
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        let w = [5u8];
        assert_eq!(w.choose(&mut rng), Some(&5));
    }
}
