//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace must build in fully offline environments, so instead of a
//! registry dependency it vendors the small slice of the `rand` 0.8 API that
//! the algorithms actually use: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 feeding xoshiro256++ —
//! not cryptographic, but statistically solid and, crucially, **stable**: all
//! experiments in this repository are reproducible bit-for-bit from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// Types that can be sampled uniformly from the unit interval / full domain
/// by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that [`Rng::gen_range`] can sample from a half-open `Range`.
pub trait SampleUniform: Sized {
    /// Draw a value uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo sampling: the bias over a 64-bit draw is far below
                // anything observable in these workloads.
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit: f64 = Standard::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit: f32 = Standard::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

/// The subset of `rand::SeedableRng` used by this workspace.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}
