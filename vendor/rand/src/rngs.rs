//! Concrete generators.

use crate::{Rng, SeedableRng};

/// A deterministic, seedable generator (xoshiro256++ seeded via SplitMix64).
///
/// The name mirrors `rand::rngs::StdRng`; unlike upstream, the stream is
/// guaranteed stable across releases of this workspace so experiment results
/// can be reproduced bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
