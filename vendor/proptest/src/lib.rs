//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build offline, so this crate vendors the slice of the
//! proptest 1.x API used by `tests/properties.rs`: the [`strategy::Strategy`] trait
//! with [`strategy::Strategy::prop_map`], range and tuple strategies,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the case number; re-running
//!   is deterministic (the RNG is seeded from the test name), so the failure
//!   reproduces exactly.
//! * **Deterministic by default.** Upstream proptest randomizes unless given
//!   a persisted seed; this shim always derives its seed from the test name,
//!   which suits a reproducibility-first research codebase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Run a block of property tests.
///
/// Supports the subset of the upstream grammar used here: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config($cfg) $($rest)*);
    };
    (@with_config($cfg:expr)
     $(#[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                    };
                    $crate::test_runner::run_case(stringify!($name), case, run);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` test, mirroring upstream's macro.
///
/// Without shrinking there is no need to thread `Result`s through the test
/// body, so this panics like `assert!` (with the same formatting options).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a `proptest!` test, mirroring upstream's macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}
