//! Test-execution support (the `proptest::test_runner` subset).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block (upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving a single `proptest!` test, seeded from the test name so
/// every run generates the same cases.
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Run one generated case, labelling any panic with the case number so the
/// failure is attributable (re-running reproduces it: generation is
/// deterministic per test name).
pub fn run_case<F: FnOnce()>(name: &str, case: u32, run: F) {
    struct CaseReporter<'a> {
        name: &'a str,
        case: u32,
        armed: bool,
    }
    impl Drop for CaseReporter<'_> {
        fn drop(&mut self) {
            if self.armed {
                eprintln!(
                    "proptest shim: test `{}` failed on generated case #{}",
                    self.name, self.case
                );
            }
        }
    }
    let mut reporter = CaseReporter {
        name,
        case,
        armed: true,
    };
    run();
    reporter.armed = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_stable_per_name() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for_test("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_case_stays_silent_on_success() {
        run_case("quiet", 0, || {});
    }
}
