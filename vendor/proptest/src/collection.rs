//! Collection strategies (the `proptest::collection` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_and_element_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = vec(0.0f64..1.0, 1..50);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..50).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
