//! Value-generation strategies (the `proptest::strategy` subset).

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: a strategy simply
/// samples a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat =
            (2usize..60, 1u32..30, 0u64..1000).prop_map(|(n, p, s)| n + p as usize + s as usize);
        for _ in 0..200 {
            let v = (2usize..60).sample(&mut rng);
            assert!((2..60).contains(&v));
            let _sum = strat.sample(&mut rng);
            let (a, b) = (0.0f64..1.0, 5i32..6).sample(&mut rng);
            assert!((0.0..1.0).contains(&a));
            assert_eq!(b, 5);
        }
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
